// Adversarial-input tests for the decoder: corrupted encodings must be
// rejected (or at minimum never silently decode to the original execution),
// and the unique-decodability guarantee must be robust to cell-level damage.
// This is the practical counterpart of the injectivity argument: if damaged
// strings routinely decoded to valid executions, the encoding would carry
// less information than Theorem 7.5 requires.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "lb/construct.h"
#include "lb/decode.h"
#include "lb/encode.h"
#include "util/permutation.h"
#include "util/prng.h"

#include "testing_util.h"

namespace melb {
namespace {

std::string rebuild(const std::vector<std::vector<std::string>>& columns) {
  std::string text;
  for (const auto& column : columns) {
    for (const auto& cell : column) {
      text += cell;
      text += '#';
    }
    text += '$';
  }
  return text;
}

class CorruptionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorruptionTest, SingleCellSubstitutionsDetected) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 4;
  const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
  const auto encoding = lb::encode(c);
  const auto reference = lb::decode(algorithm, encoding.text);

  const std::vector<std::string> replacements = {"R", "W", "SR", "PR", "C", "W,PR0R0W1"};
  util::Xoshiro256StarStar rng(99);
  int attempted = 0, rejected = 0, changed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto columns = encoding.cells;
    auto& column = columns[rng.below(columns.size())];
    if (column.empty()) continue;
    auto& cell = column[rng.below(column.size())];
    const std::string replacement =
        replacements[rng.below(replacements.size())];
    if (cell == replacement) continue;
    // SR <-> PR is semantically neutral when no later write metastep on the
    // register checks the preread count: both mean "execute this singleton
    // read now". The encoding distinguishes them only to pace the decoder,
    // so decoding to the same execution is correct there — skip the pair.
    const bool benign_pair = (cell == "SR" && replacement == "PR") ||
                             (cell == "PR" && replacement == "SR");
    if (benign_pair) continue;
    cell = replacement;
    ++attempted;
    try {
      const auto decoded = lb::decode(algorithm, rebuild(columns));
      // If it decoded at all, it must not masquerade as the original.
      bool same = decoded.execution.size() == reference.execution.size();
      if (same) {
        for (std::size_t i = 0; i < decoded.execution.size(); ++i) {
          if (!(decoded.execution.at(i).step == reference.execution.at(i).step)) {
            same = false;
            break;
          }
        }
      }
      EXPECT_FALSE(same) << "corrupted encoding decoded to the original execution";
      ++changed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  ASSERT_GT(attempted, 20);
  // The format is dense: almost every substitution must be detected outright.
  EXPECT_GE(rejected * 10, attempted * 8)
      << "rejected only " << rejected << "/" << attempted << " (plus " << changed
      << " decoded-but-different)";
}

TEST_P(CorruptionTest, TruncationsDetected) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 3;
  const auto c = lb::construct(algorithm, n, util::Permutation(n));
  const auto encoding = lb::encode(c);
  // Drop the tail cell of each column in turn.
  for (std::size_t col = 0; col < encoding.cells.size(); ++col) {
    auto columns = encoding.cells;
    if (columns[col].empty()) continue;
    columns[col].pop_back();
    EXPECT_THROW(lb::decode(algorithm, rebuild(columns)), std::exception)
        << "column " << col;
  }
}

TEST_P(CorruptionTest, SignatureCountTamperingDetected) {
  const auto& algorithm = *algo::algorithm_by_name(GetParam()).algorithm;
  const int n = 4;
  const auto c = lb::construct(algorithm, n, util::Permutation::reversed(n));
  const auto encoding = lb::encode(c);
  // Find a signature cell and inflate each of its counts by one.
  for (const char* tweak : {"pr", "r", "w"}) {
    auto columns = encoding.cells;
    bool done_tweak = false;
    for (auto& column : columns) {
      for (auto& cell : column) {
        lb::Signature sig;
        if (!done_tweak && lb::parse_signature_cell(cell, sig)) {
          if (std::string(tweak) == "pr") ++sig.prereads;
          if (std::string(tweak) == "r") ++sig.readers;
          if (std::string(tweak) == "w") ++sig.writers;
          cell = "W,PR" + std::to_string(sig.prereads) + "R" + std::to_string(sig.readers) +
                 "W" + std::to_string(sig.writers);
          done_tweak = true;
        }
      }
    }
    ASSERT_TRUE(done_tweak);
    EXPECT_THROW(lb::decode(algorithm, rebuild(columns)), std::exception)
        << "tweak " << tweak;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CorruptionTest,
                         ::testing::Values("yang-anderson", "bakery", "burns"),
                         testing_util::AlgorithmNameGenerator());

TEST(DecodeRobustness, EmptyAndDegenerateInputs) {
  const auto& algorithm = *algo::algorithm_by_name("bakery").algorithm;
  EXPECT_NO_THROW(lb::decode(algorithm, ""));  // zero processes: empty execution
  EXPECT_THROW(lb::decode(algorithm, "#"), std::exception);
  EXPECT_THROW(lb::decode(algorithm, "C"), std::exception);   // unterminated
  EXPECT_THROW(lb::decode(algorithm, "Q#$"), std::exception); // unknown cell
}

}  // namespace
}  // namespace melb
